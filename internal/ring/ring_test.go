package ring

import (
	"runtime"
	"sync"
	"testing"
)

// soak scales a concurrency-soak iteration count: full size normally,
// a light pass under -short. The spin loops below yield between retries —
// on a single-core runner a bare spin starves the peer goroutine for whole
// scheduler quanta and the suite takes minutes instead of seconds.
func soak(t *testing.T, full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

func TestBadCapacity(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := NewMPMC[int](c); err != ErrBadCapacity {
			t.Errorf("NewMPMC(%d) err = %v", c, err)
		}
		if _, err := NewSPSC[int](c); err != ErrBadCapacity {
			t.Errorf("NewSPSC(%d) err = %v", c, err)
		}
	}
}

func TestMPMCFIFO(t *testing.T) {
	r, _ := NewMPMC[int](8)
	for i := 0; i < 5; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestMPMCFull(t *testing.T) {
	r, _ := NewMPMC[int](4)
	for i := 0; i < 4; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed below capacity", i)
		}
	}
	if r.Enqueue(99) {
		t.Fatal("enqueue into full ring succeeded")
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", r.Len(), r.Cap())
	}
	// after one dequeue there is room again
	r.Dequeue()
	if !r.Enqueue(99) {
		t.Fatal("enqueue after dequeue failed")
	}
}

func TestMPMCWrapAround(t *testing.T) {
	r, _ := NewMPMC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Enqueue(round*10 + i) {
				t.Fatal("enqueue failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Dequeue()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: got %d", round, v)
			}
		}
	}
}

func TestMPMCBurst(t *testing.T) {
	r, _ := NewMPMC[int](8)
	in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if n := r.EnqueueBurst(in); n != 8 {
		t.Fatalf("enqueued %d, want 8 (capacity)", n)
	}
	out := make([]int, 5)
	if n := r.DequeueBurst(out); n != 5 {
		t.Fatalf("dequeued %d, want 5", n)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if n := r.DequeueBurst(make([]int, 16)); n != 3 {
		t.Fatalf("drain got %d, want 3", n)
	}
}

func TestMPMCConcurrent(t *testing.T) {
	// N producers, M consumers; every produced value must be consumed
	// exactly once. Run with -race to exercise the memory ordering.
	r, _ := NewMPMC[int](64)
	const producers, consumers = 4, 4
	perProducer := soak(t, 5000)
	var wg sync.WaitGroup
	seen := make([]int32, producers*perProducer)
	var mu sync.Mutex
	done := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				for !r.Enqueue(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := r.Dequeue()
				if !ok {
					select {
					case <-done:
						// final drain
						for {
							v, ok := r.Dequeue()
							if !ok {
								return
							}
							mu.Lock()
							seen[v]++
							mu.Unlock()
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}

func TestSPSCFIFO(t *testing.T) {
	r, _ := NewSPSC[string](4)
	r.Enqueue("a")
	r.Enqueue("b")
	if v, _ := r.Dequeue(); v != "a" {
		t.Fatalf("got %q", v)
	}
	if v, _ := r.Dequeue(); v != "b" {
		t.Fatalf("got %q", v)
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestSPSCFullAndWrap(t *testing.T) {
	r, _ := NewSPSC[int](2)
	if !r.Enqueue(1) || !r.Enqueue(2) {
		t.Fatal("fill failed")
	}
	if r.Enqueue(3) {
		t.Fatal("overfill succeeded")
	}
	for round := 0; round < 50; round++ {
		v, ok := r.Dequeue()
		if !ok || v != round+1 {
			t.Fatalf("round %d: %d %v", round, v, ok)
		}
		if !r.Enqueue(round + 3) {
			t.Fatal("refill failed")
		}
	}
}

func TestSPSCConcurrent(t *testing.T) {
	r, _ := NewSPSC[int](128)
	n := soak(t, 50000)
	go func() {
		for i := 0; i < n; i++ {
			for !r.Enqueue(i) {
				runtime.Gosched()
			}
		}
	}()
	next := 0
	for next < n {
		v, ok := r.Dequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("out of order: got %d want %d", v, next)
		}
		next++
	}
}

func TestSPSCBurst(t *testing.T) {
	r, _ := NewSPSC[int](8)
	for i := 0; i < 6; i++ {
		r.Enqueue(i)
	}
	out := make([]int, 4)
	if n := r.DequeueBurst(out); n != 4 {
		t.Fatalf("burst = %d", n)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func BenchmarkMPMCUncontended(b *testing.B) {
	r, _ := NewMPMC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}

func BenchmarkSPSCUncontended(b *testing.B) {
	r, _ := NewSPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}

func BenchmarkMPMCContended(b *testing.B) {
	r, _ := NewMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !r.Enqueue(1) {
				r.Dequeue()
			} else {
				r.Dequeue()
			}
		}
	})
}

// TestMPMCBurstContended hammers the bulk span-reservation path: several
// producers enqueue bursts of varying sizes while consumers drain with
// bursts, and every value must come out exactly once. Run with -race to
// exercise the publish ordering of the reserved spans.
func TestMPMCBurstContended(t *testing.T) {
	r, _ := NewMPMC[int](64)
	const producers, consumers = 4, 4
	perProducer := soak(t, 4000)
	seen := make([]int32, producers*perProducer)
	var mu sync.Mutex
	var wg, cwg sync.WaitGroup
	done := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([]int, 0, 8)
			next := 0
			for next < perProducer {
				buf = buf[:0]
				// bursts of 1..8, truncated at the tail
				for i := 0; i < 1+(next%8) && next+i < perProducer; i++ {
					buf = append(buf, p*perProducer+next+i)
				}
				sent := 0
				for sent < len(buf) {
					n := r.EnqueueBurst(buf[sent:])
					if n == 0 {
						runtime.Gosched()
						continue
					}
					sent += n
				}
				next += len(buf)
			}
		}(p)
	}
	drain := func(out []int) bool {
		n := r.DequeueBurst(out)
		if n == 0 {
			return false
		}
		mu.Lock()
		for _, v := range out[:n] {
			seen[v]++
		}
		mu.Unlock()
		return true
	}
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			out := make([]int, 8)
			for {
				if !drain(out) {
					select {
					case <-done:
						for drain(out) {
						}
						return
					default:
						runtime.Gosched()
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}

// TestMPMCBurstMixedWithSingle interleaves bulk and single-element
// operations on the same ring: the two reservation styles must compose.
func TestMPMCBurstMixedWithSingle(t *testing.T) {
	r, _ := NewMPMC[int](32)
	n := soak(t, 20000)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]int, 4)
		i := 0
		for i < n {
			if i%5 == 0 {
				for !r.Enqueue(i) {
					runtime.Gosched()
				}
				i++
				continue
			}
			k := 0
			for k < len(buf) && i+k < n {
				buf[k] = i + k
				k++
			}
			sent := 0
			for sent < k {
				m := r.EnqueueBurst(buf[sent:k])
				if m == 0 {
					runtime.Gosched()
					continue
				}
				sent += m
			}
			i += k
		}
	}()
	got := make([]bool, n)
	out := make([]int, 4)
	read := 0
	for read < n {
		if read%3 == 0 {
			if v, ok := r.Dequeue(); ok {
				if got[v] {
					t.Fatalf("value %d duplicated", v)
				}
				got[v] = true
				read++
				continue
			}
			runtime.Gosched()
			continue
		}
		m := r.DequeueBurst(out)
		if m == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range out[:m] {
			if got[v] {
				t.Fatalf("value %d duplicated", v)
			}
			got[v] = true
		}
		read += m
	}
	wg.Wait()
	for v, ok := range got {
		if !ok {
			t.Fatalf("value %d lost", v)
		}
	}
}

// TestMPMCBurstSingleProducerFIFO checks bursts preserve FIFO order when
// one producer and one consumer use the bulk path end to end.
func TestMPMCBurstSingleProducerFIFO(t *testing.T) {
	r, _ := NewMPMC[int](16)
	in := make([]int, 11)
	out := make([]int, 16)
	next := 0
	want := 0
	for round := 0; round < 200; round++ {
		for i := range in {
			in[i] = next + i
		}
		next += r.EnqueueBurst(in)
		for {
			n := r.DequeueBurst(out)
			if n == 0 {
				break
			}
			for _, v := range out[:n] {
				if v != want {
					t.Fatalf("got %d want %d", v, want)
				}
				want++
			}
		}
	}
	if want != next {
		t.Fatalf("drained %d of %d", want, next)
	}
}

// perElementEnqueueBurst is the pre-bulk-path implementation (one CAS per
// element), kept as the benchmark baseline for the span-reservation path.
func perElementEnqueueBurst[T any](r *MPMC[T], in []T) int {
	n := 0
	for n < len(in) {
		if !r.Enqueue(in[n]) {
			break
		}
		n++
	}
	return n
}

func perElementDequeueBurst[T any](r *MPMC[T], out []T) int {
	n := 0
	for n < len(out) {
		v, ok := r.Dequeue()
		if !ok {
			break
		}
		out[n] = v
		n++
	}
	return n
}

func benchBurst(b *testing.B, size int, enq func(*MPMC[int], []int) int, deq func(*MPMC[int], []int) int) {
	r, _ := NewMPMC[int](1024)
	in := make([]int, size)
	out := make([]int, size)
	for i := range in {
		in[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enq(r, in)
		deq(r, out)
	}
}

func BenchmarkMPMCBurst32Bulk(b *testing.B) {
	benchBurst(b, 32, (*MPMC[int]).EnqueueBurst, (*MPMC[int]).DequeueBurst)
}

func BenchmarkMPMCBurst32PerElement(b *testing.B) {
	benchBurst(b, 32, perElementEnqueueBurst[int], perElementDequeueBurst[int])
}

func BenchmarkMPMCBurst32BulkContended(b *testing.B) {
	r, _ := NewMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		in := make([]int, 32)
		out := make([]int, 32)
		for pb.Next() {
			r.EnqueueBurst(in)
			r.DequeueBurst(out)
		}
	})
}

func BenchmarkMPMCBurst32PerElementContended(b *testing.B) {
	r, _ := NewMPMC[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		in := make([]int, 32)
		out := make([]int, 32)
		for pb.Next() {
			perElementEnqueueBurst(r, in)
			perElementDequeueBurst(r, out)
		}
	})
}
