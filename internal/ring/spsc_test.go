package ring

import (
	"runtime"
	"sync"
	"testing"
)

// TestSPSCBurstParityWithMPMC drives the identical deterministic mix of
// single and burst operations through an SPSC and an MPMC ring of the same
// capacity: every operation must return the same count and the same values,
// so the fast path is a drop-in specialisation, not a different queue.
func TestSPSCBurstParityWithMPMC(t *testing.T) {
	s, _ := NewSPSC[int](16)
	m, _ := NewMPMC[int](16)
	in := make([]int, 13)
	outS := make([]int, 13)
	outM := make([]int, 13)
	next := 0
	for step := 0; step < 500; step++ {
		// Deterministic op mix: burst sizes cycle 1..13, every third step
		// drains, every seventh uses the single-element path.
		size := 1 + step%13
		switch {
		case step%7 == 0:
			v := next
			okS, okM := s.Enqueue(v), m.Enqueue(v)
			if okS != okM {
				t.Fatalf("step %d: Enqueue parity %v vs %v", step, okS, okM)
			}
			if okS {
				next++
			}
		case step%3 == 0:
			nS := s.DequeueBurst(outS[:size])
			nM := m.DequeueBurst(outM[:size])
			if nS != nM {
				t.Fatalf("step %d: DequeueBurst %d vs %d", step, nS, nM)
			}
			for i := 0; i < nS; i++ {
				if outS[i] != outM[i] {
					t.Fatalf("step %d: out[%d] = %d vs %d", step, i, outS[i], outM[i])
				}
			}
		default:
			for i := 0; i < size; i++ {
				in[i] = next + i
			}
			nS := s.EnqueueBurst(in[:size])
			nM := m.EnqueueBurst(in[:size])
			if nS != nM {
				t.Fatalf("step %d: EnqueueBurst %d vs %d", step, nS, nM)
			}
			next += nS
		}
		if s.Len() != m.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, s.Len(), m.Len())
		}
	}
}

// TestSPSCBulkWrapAround exercises the batch copy across the index wrap.
func TestSPSCBulkWrapAround(t *testing.T) {
	r, _ := NewSPSC[int](8)
	in := make([]int, 5)
	out := make([]int, 5)
	want := 0
	next := 0
	for round := 0; round < 100; round++ {
		for i := range in {
			in[i] = next + i
		}
		next += r.EnqueueBurst(in)
		n := r.DequeueBurst(out)
		for _, v := range out[:n] {
			if v != want {
				t.Fatalf("round %d: got %d want %d", round, v, want)
			}
			want++
		}
	}
	if want != next {
		t.Fatalf("drained %d of %d", want, next)
	}
	// Oversized requests truncate instead of wrapping into garbage.
	for i := 0; i < 8; i++ {
		r.Enqueue(100 + i)
	}
	if n := r.EnqueueBurst(in); n != 0 {
		t.Fatalf("enqueue into full ring took %d", n)
	}
	big := make([]int, 32)
	if n := r.DequeueBurst(big); n != 8 {
		t.Fatalf("oversized drain took %d, want 8", n)
	}
	if n := r.DequeueBurst(big); n != 0 {
		t.Fatalf("empty drain took %d", n)
	}
}

// TestSPSCBurstConcurrent streams values through the bulk paths with one
// producer and one consumer goroutine; FIFO order and exactly-once delivery
// must hold. Run with -race to exercise the release/acquire pairing of the
// cursor stores.
func TestSPSCBurstConcurrent(t *testing.T) {
	r, _ := NewSPSC[int](128)
	n := soak(t, 100000)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		in := make([]int, 16)
		next := 0
		for next < n {
			k := 0
			for k < len(in) && next+k < n {
				in[k] = next + k
				k++
			}
			sent := r.EnqueueBurst(in[:k])
			if sent == 0 {
				runtime.Gosched()
			}
			next += sent
		}
	}()
	out := make([]int, 16)
	want := 0
	for want < n {
		k := r.DequeueBurst(out)
		if k == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range out[:k] {
			if v != want {
				t.Fatalf("out of order: got %d want %d", v, want)
			}
			want++
		}
	}
	wg.Wait()
}

func benchSPSCBurst(b *testing.B, size int) {
	r, _ := NewSPSC[int](1024)
	in := make([]int, size)
	out := make([]int, size)
	for i := range in {
		in[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EnqueueBurst(in)
		r.DequeueBurst(out)
	}
}

// BenchmarkSPSCBurst32 against BenchmarkMPMCBurst32Bulk (ring_test.go) is
// the committed fast-path comparison: same burst size, same capacity, the
// only delta is SPSC's two-loads-one-store cursor protocol vs MPMC's
// CAS + per-slot sequence traffic. BENCH_ring.json records the measured
// numbers.
func BenchmarkSPSCBurst32(b *testing.B) { benchSPSCBurst(b, 32) }

func BenchmarkSPSCBurst8(b *testing.B) { benchSPSCBurst(b, 8) }
