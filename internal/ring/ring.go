// Package ring provides bounded lock-free rings in the mould of DPDK's
// rte_ring: a multi-producer/multi-consumer queue (Vyukov bounded MPMC)
// and a faster single-producer/single-consumer variant. The real-time
// Metronome runtime uses them as Rx queues between traffic sources and the
// retrieval threads.
package ring

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrBadCapacity reports a capacity that is not a power of two >= 2.
var ErrBadCapacity = errors.New("ring: capacity must be a power of two >= 2")

type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded multi-producer/multi-consumer ring. All methods are
// safe for concurrent use and full/empty conditions return false/0
// immediately, exactly like rte_ring's enqueue/dequeue calls. Like
// rte_ring, the burst paths reserve a whole span with one CAS and may then
// wait for a peer that reserved an overlapping slot earlier to publish its
// read or write — a wait bounded by that peer's few remaining instructions
// (plus its rescheduling latency if it was preempted mid-operation), not
// by queue state. Single-element Enqueue/Dequeue never wait.
type MPMC[T any] struct {
	mask    uint64
	slots   []slot[T]
	_       [56]byte // keep head and tail on separate cache lines
	enqueue atomic.Uint64
	_       [56]byte
	dequeue atomic.Uint64
}

// NewMPMC returns a ring holding up to capacity items.
func NewMPMC[T any](capacity int) (*MPMC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	r := &MPMC[T]{
		mask:  uint64(capacity - 1),
		slots: make([]slot[T], capacity),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Cap returns the ring capacity.
func (r *MPMC[T]) Cap() int { return len(r.slots) }

// Len returns an instantaneous (racy) element count, useful for occupancy
// metrics only.
func (r *MPMC[T]) Len() int {
	d := r.enqueue.Load() - r.dequeue.Load()
	if d > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(d)
}

// Enqueue adds v; it reports false when the ring is full.
func (r *MPMC[T]) Enqueue(v T) bool {
	pos := r.enqueue.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enqueue.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.enqueue.Load()
		case seq < pos:
			return false // slot not yet consumed: full
		default:
			pos = r.enqueue.Load()
		}
	}
}

// Dequeue removes the oldest element; ok is false when the ring is empty.
func (r *MPMC[T]) Dequeue() (v T, ok bool) {
	pos := r.dequeue.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if r.dequeue.CompareAndSwap(pos, pos+1) {
				v = s.val
				var zero T
				s.val = zero
				s.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.dequeue.Load()
		case seq <= pos:
			return v, false // slot not yet produced: empty
		default:
			pos = r.dequeue.Load()
		}
	}
}

// awaitSeq spins until the slot's sequence reaches want — the moment the
// peer that previously reserved it publishes its read or write. The wait is
// bounded by that peer's few remaining instructions (exactly rte_ring's
// tail-update wait); the periodic Gosched keeps a preempted peer from
// starving us on a loaded machine.
func awaitSeq(s *atomic.Uint64, want uint64) {
	for spin := 0; s.Load() != want; spin++ {
		if spin >= 128 {
			runtime.Gosched()
			spin = 0
		}
	}
}

// DequeueBurst moves up to len(out) elements into out and returns the
// count, mirroring rte_eth_rx_burst semantics. Like rte_ring's bulk path,
// it reserves the whole span with a single CAS on the consumer cursor and
// then drains the slots in order, instead of paying one CAS per element.
func (r *MPMC[T]) DequeueBurst(out []T) int {
	if len(out) == 0 {
		return 0
	}
	var pos, n uint64
	for {
		pos = r.dequeue.Load()
		// Conservative availability: the producer cursor counts reserved
		// writes, and any not yet published are awaited below.
		avail := r.enqueue.Load() - pos
		n = uint64(len(out))
		if n > avail {
			n = avail
		}
		if n == 0 {
			return 0
		}
		if r.dequeue.CompareAndSwap(pos, pos+n) {
			break
		}
	}
	for i := uint64(0); i < n; i++ {
		s := &r.slots[(pos+i)&r.mask]
		awaitSeq(&s.seq, pos+i+1)
		out[i] = s.val
		var zero T
		s.val = zero
		s.seq.Store(pos + i + r.mask + 1)
	}
	return int(n)
}

// EnqueueBurst adds as many elements of in as fit and returns the count.
// One CAS on the producer cursor reserves the span; slots are then filled
// and published in order (rte_ring bulk enqueue).
func (r *MPMC[T]) EnqueueBurst(in []T) int {
	if len(in) == 0 {
		return 0
	}
	var pos, n uint64
	for {
		pos = r.enqueue.Load()
		// Conservative free count: the consumer cursor counts reserved
		// reads; a slot whose read is still in flight is awaited below.
		free := uint64(len(r.slots)) - (pos - r.dequeue.Load())
		n = uint64(len(in))
		if n > free {
			n = free
		}
		if n == 0 {
			return 0
		}
		if r.enqueue.CompareAndSwap(pos, pos+n) {
			break
		}
	}
	for i := uint64(0); i < n; i++ {
		s := &r.slots[(pos+i)&r.mask]
		awaitSeq(&s.seq, pos+i)
		s.val = in[i]
		s.seq.Store(pos + i + 1)
	}
	return int(n)
}

// SPSC is a single-producer/single-consumer ring: no CAS, just two indexes
// with release/acquire ordering. At most one Enqueue*/producer call and one
// Dequeue*/consumer call may be in flight at a time — one goroutine per
// role, or several serialised by a lock whose hand-off synchronises (an
// atomic trylock does; Metronome's Runner drains queues under exactly such
// a lock). Race-detector builds enforce the contract: concurrent calls into
// the same role panic (see roleGuard); regular builds pay nothing.
type SPSC[T any] struct {
	mask uint64
	buf  []T
	prod roleGuard
	cons roleGuard
	_    [56]byte
	head atomic.Uint64 // next write
	_    [56]byte
	tail atomic.Uint64 // next read
}

// NewSPSC returns a single-producer/single-consumer ring.
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	return &SPSC[T]{mask: uint64(capacity - 1), buf: make([]T, capacity)}, nil
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the instantaneous element count.
func (r *SPSC[T]) Len() int { return int(r.head.Load() - r.tail.Load()) }

// Enqueue adds v; it reports false when full.
func (r *SPSC[T]) Enqueue(v T) bool {
	r.prod.enter("producer")
	head := r.head.Load()
	if head-r.tail.Load() >= uint64(len(r.buf)) {
		r.prod.exit()
		return false
	}
	r.buf[head&r.mask] = v
	r.head.Store(head + 1)
	r.prod.exit()
	return true
}

// Dequeue removes the oldest element; ok is false when empty.
func (r *SPSC[T]) Dequeue() (v T, ok bool) {
	r.cons.enter("consumer")
	tail := r.tail.Load()
	if tail == r.head.Load() {
		r.cons.exit()
		return v, false
	}
	v = r.buf[tail&r.mask]
	var zero T
	r.buf[tail&r.mask] = zero
	r.tail.Store(tail + 1)
	r.cons.exit()
	return v, true
}

// EnqueueBurst adds as many elements of in as fit and returns the count.
// This is the single-producer bulk fast path: one acquire load of the
// consumer cursor bounds the batch, the slots are filled with plain stores,
// and a single release store of the producer cursor publishes the whole
// burst — no CAS, no per-slot sequence traffic (compare MPMC.EnqueueBurst).
func (r *SPSC[T]) EnqueueBurst(in []T) int {
	r.prod.enter("producer")
	head := r.head.Load()
	n := uint64(len(r.buf)) - (head - r.tail.Load())
	if n > uint64(len(in)) {
		n = uint64(len(in))
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(head+i)&r.mask] = in[i]
	}
	if n > 0 {
		r.head.Store(head + n)
	}
	r.prod.exit()
	return int(n)
}

// DequeueBurst moves up to len(out) elements into out, mirroring
// rte_eth_rx_burst semantics: one acquire load of the producer cursor
// bounds the batch, the slots are copied out and zeroed with plain stores,
// and a single release store of the consumer cursor frees the whole span.
func (r *SPSC[T]) DequeueBurst(out []T) int {
	r.cons.enter("consumer")
	tail := r.tail.Load()
	n := r.head.Load() - tail
	if n > uint64(len(out)) {
		n = uint64(len(out))
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		idx := (tail + i) & r.mask
		out[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	if n > 0 {
		r.tail.Store(tail + n)
	}
	r.cons.exit()
	return int(n)
}
