//go:build !race

package ring

// roleGuard is the production build of the SPSC role-misuse detector: a
// zero-size no-op the compiler inlines away, so the fast path pays nothing
// for the contract checking race builds get (see guard_race.go).
type roleGuard struct{}

func (*roleGuard) enter(string) {}
func (*roleGuard) exit()        {}
