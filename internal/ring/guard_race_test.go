//go:build race

package ring

import (
	"sync"
	"testing"
)

// The guard tests run only under -race, where roleGuard is compiled in
// (the CI race step covers internal/ring, so the contract is enforced on
// every push).

// TestSPSCWrongRolePanicsDeterministic white-boxes the guard: with one
// producer call already in flight, a second entry into the producer role
// must panic.
func TestSPSCWrongRolePanicsDeterministic(t *testing.T) {
	r, _ := NewSPSC[int](8)
	r.prod.enter("producer") // first producer mid-call
	defer r.prod.exit()
	defer func() {
		if recover() == nil {
			t.Fatal("second concurrent producer call did not panic")
		}
	}()
	r.Enqueue(1)
}

// TestSPSCConsumerRoleGuard does the same for the consumer side, through
// the burst path.
func TestSPSCConsumerRoleGuard(t *testing.T) {
	r, _ := NewSPSC[int](8)
	r.Enqueue(1)
	r.cons.enter("consumer")
	defer r.cons.exit()
	defer func() {
		if recover() == nil {
			t.Fatal("second concurrent consumer call did not panic")
		}
	}()
	r.DequeueBurst(make([]int, 4))
}

// TestSPSCDistinctRolesDoNotCollide: a producer and a consumer in flight
// at the same time is the contract working as intended, not misuse.
func TestSPSCDistinctRolesDoNotCollide(t *testing.T) {
	r, _ := NewSPSC[int](64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10000; i++ {
			r.Enqueue(i)
		}
	}()
	go func() {
		defer wg.Done()
		out := make([]int, 8)
		for i := 0; i < 10000; i++ {
			r.DequeueBurst(out)
		}
	}()
	wg.Wait()
}
