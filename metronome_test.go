package metronome_test

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metronome"
)

// TestPublicSimulationAPI drives the whole simulation stack through the
// facade only — what an external user of the module sees.
func TestPublicSimulationAPI(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.Seed = 7
	met := metronome.Simulate(cfg,
		[]metronome.Traffic{metronome.CBR{PPS: metronome.LineRate64B(10)}},
		200*time.Millisecond,
	)
	if met.LossRate > 1e-3 {
		t.Errorf("loss = %v", met.LossRate)
	}
	if met.CPUPercent >= 100 {
		t.Errorf("CPU = %v%%, must beat a single static core", met.CPUPercent)
	}
	if math.Abs(met.ThroughputPPS-metronome.LineRate64B(10))/1e6 > 0.5 {
		t.Errorf("throughput = %v", met.ThroughputPPS)
	}
}

func TestPublicModelAPI(t *testing.T) {
	// eq (13) limits through the facade.
	vbar := 10 * time.Microsecond
	if got := metronome.AdaptiveTS(vbar, 0, 3, 1); got != 30*time.Microsecond {
		t.Errorf("TS at rho=0 = %v, want M*vbar", got)
	}
	if got := metronome.AdaptiveTS(vbar, 1, 3, 1); got != vbar {
		t.Errorf("TS at rho=1 = %v, want vbar", got)
	}
	// eq (4): B=V => rho=0.5.
	if rho := metronome.EstimateRho(time.Millisecond, time.Millisecond); rho != 0.5 {
		t.Errorf("rho = %v", rho)
	}
	// eq (5)/(6) consistency at the Fig 4 point.
	ts := 50 * time.Microsecond
	if p := metronome.VacationCDF(ts, ts, ts, 3); p != 1 {
		t.Errorf("CDF at TS = %v", p)
	}
	ev := metronome.ExpectedVacation(ts, 500*time.Microsecond, 3)
	if ev <= 0 || ev > ts {
		t.Errorf("E[V] = %v", ev)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(metronome.Experiments()) < 20 {
		t.Fatalf("registry size = %d", len(metronome.Experiments()))
	}
	tables, ok := metronome.RunExperiment("fig7", true, 1)
	if !ok || len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("fig7 did not run through the facade")
	}
	if _, ok := metronome.RunExperiment("nope", true, 1); ok {
		t.Fatal("unknown experiment accepted")
	}
}

// TestPublicRuntimeEndToEnd runs producer -> ring -> Metronome runner ->
// handler entirely through the facade, checking packet conservation.
func TestPublicRuntimeEndToEnd(t *testing.T) {
	pool := metronome.NewPool(2048)
	ringQ, err := metronome.NewRing(1024)
	if err != nil {
		t.Fatal(err)
	}
	var processed atomic.Uint64
	runner := metronome.NewRunner(
		[]metronome.RxQueue{metronome.RingQueue{R: ringQ}},
		func(batch []*metronome.Mbuf) {
			for _, m := range batch {
				processed.Add(1)
				m.Free()
			}
		},
		metronome.RunnerConfig{M: 2, VBar: 100 * time.Microsecond, Seed: 3},
	)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); runner.Run(ctx) }()

	const n = 5000
	sent := 0
	for sent < n {
		m, err := pool.Get()
		if err != nil {
			time.Sleep(50 * time.Microsecond)
			continue
		}
		m.SetFrame([]byte{1, 2, 3})
		if !ringQ.Enqueue(m) {
			m.Free()
			time.Sleep(50 * time.Microsecond)
			continue
		}
		sent++
	}
	deadline := time.Now().Add(5 * time.Second)
	for processed.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if processed.Load() != n {
		t.Fatalf("processed %d of %d", processed.Load(), n)
	}
	if pool.Available() != pool.Size() {
		t.Fatalf("pool leak: %d/%d", pool.Available(), pool.Size())
	}
	if runner.Rho(0) < 0 || runner.TS(0) <= 0 {
		t.Error("estimator state nonsensical")
	}
}

// TestBaselineComparisonViaSim reproduces the headline claim through the
// public API alone: Metronome's CPU scales with load, polling's does not.
func TestBaselineComparisonViaSim(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.Seed = 11
	rates := []float64{metronome.LineRate64B(10), metronome.LineRate64B(1)}
	var cpus []float64
	for _, pps := range rates {
		met := metronome.Simulate(cfg,
			[]metronome.Traffic{metronome.CBR{PPS: pps}}, 100*time.Millisecond)
		cpus = append(cpus, met.CPUPercent)
	}
	if !(cpus[0] > 2*cpus[1]) {
		t.Errorf("CPU not load-proportional: %v", cpus)
	}
}

// TestPublicElasticAPI drives the elastic control plane end to end through
// the facade: a flash crowd must grow the team within budget, shrink back
// after, and identical runs must be identical (resizes ride engine events).
func TestPublicElasticAPI(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.M = 2
	cfg.Seed = 5
	crowd := metronome.StepTraffic{At: 0.05, Before: metronome.CBR{PPS: 1e6},
		After: metronome.StepTraffic{At: 0.15, Before: metronome.CBR{PPS: 12e6},
			After: metronome.CBR{PPS: 1e6}}}
	run := func() (metronome.SimMetrics, metronome.ElasticReport) {
		ecfg := metronome.DefaultElasticConfig(2, 8)
		ecfg.TargetOccupancy = 0.05
		return metronome.SimulateElastic(cfg, ecfg, []metronome.Traffic{crowd}, 250*time.Millisecond)
	}
	m1, r1 := run()
	if r1.MaxThreads <= 2 {
		t.Fatalf("controller never grew the team: %+v", r1)
	}
	if r1.MaxThreads > 8 {
		t.Fatalf("budget exceeded: %+v", r1)
	}
	if r1.Resizes == 0 || r1.ThreadSeconds <= 0 {
		t.Fatalf("empty report: %+v", r1)
	}
	if r1.ThreadSeconds >= 8*0.25 {
		t.Fatalf("elastic provisioned like static-8: %v thread-seconds", r1.ThreadSeconds)
	}
	m2, r2 := run()
	if m1.Cycles != m2.Cycles || m1.RxPackets != m2.RxPackets || r1.Resizes != r2.Resizes ||
		r1.ThreadSeconds != r2.ThreadSeconds {
		t.Fatalf("elastic runs diverged:\n%+v %+v\n%+v %+v", m1, r1, m2, r2)
	}
}

// TestPublicPlacementAPI drives the placement plane end to end through the
// facade: with ElasticConfig.Placement a hot-queue shift must migrate
// members (the report carries a plan favouring the hot queue), the -cap
// analogue RingCap must shape the ring the occupancy target is measured
// against, and identical runs must be identical.
func TestPublicPlacementAPI(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.M = 6
	cfg.VBar = 15e-6
	cfg.Policy = metronome.PolicyRMetronome
	cfg.RingCap = 2048
	cfg.Seed = 9
	hot := func(q, hotQ int) metronome.Traffic {
		if q == hotQ {
			return metronome.CBR{PPS: 16e6}
		}
		return metronome.CBR{PPS: 2e6}
	}
	arrivals := []metronome.Traffic{hot(0, 2), hot(1, 2), hot(2, 2)}
	run := func() (metronome.SimMetrics, metronome.ElasticReport) {
		ecfg := metronome.DefaultElasticConfig(6, 6) // pinned total: placement only
		ecfg.Placement = true
		return metronome.SimulateElastic(cfg, ecfg, arrivals, 200*time.Millisecond)
	}
	m1, r1 := run()
	if r1.FinalPlan == nil {
		t.Fatalf("placement run carries no plan: %+v", r1)
	}
	if r1.FinalPlan[2] <= r1.FinalPlan[0] || r1.FinalPlan[2] <= r1.FinalPlan[1] {
		t.Fatalf("plan %v does not favour the hot queue", r1.FinalPlan)
	}
	if r1.Rebalances == 0 {
		t.Fatalf("no rebalances at a pinned total: %+v", r1)
	}
	if r1.Resizes != 0 || r1.MinThreads != 6 || r1.MaxThreads != 6 {
		t.Fatalf("pinned total moved: %+v", r1)
	}
	m2, r2 := run()
	if m1.Cycles != m2.Cycles || m1.RxPackets != m2.RxPackets || r1.Rebalances != r2.Rebalances {
		t.Fatalf("placement runs diverged:\n%+v %+v\n%+v %+v", m1, r1, m2, r2)
	}
}

// TestPublicFaultAPI drives the fault plane end to end through the facade:
// a straggler storm against the sole member of a queue's service group
// starves the queue, the self-healing health layer exiles the straggler and
// reinforces the queue, the oblivious controller stays blind (the stalled
// member is also the queue's only gauge publisher, so its telemetry
// freezes at pre-fault values), and identical runs are identical.
func TestPublicFaultAPI(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.M = 2
	cfg.Policy = metronome.PolicyRMetronome
	cfg.Seed = 11
	// The ring must outlast detection: at 150 Kpps a 2048-slot ring buys
	// ~13.6 ms, past the health layer's ~8 ms heartbeat bound, so the
	// self-healing arm can exile before the victim queue overflows.
	cfg.RingCap = 2048
	arrivals := []metronome.Traffic{
		metronome.CBR{PPS: 150e3}, // the storm's victim queue
		metronome.CBR{PPS: 1e6},
	}
	evs := metronome.StragglerStorm(nil, 0, 0.08, 0.26, 0.03, 0.02)
	run := func(health bool) (metronome.SimMetrics, metronome.ElasticReport) {
		ecfg := metronome.DefaultElasticConfig(2, 4)
		ecfg.TargetOccupancy = 0.05
		ecfg.Placement = true
		ecfg.Health = health
		return metronome.SimulateFaults(cfg, ecfg, arrivals, 300*time.Millisecond, evs)
	}
	mHeal, rHeal := run(true)
	mObli, _ := run(false)
	if rHeal.Exiles == 0 {
		t.Fatalf("health layer never exiled the straggler: %+v", rHeal)
	}
	if mObli.Drops < 2000 {
		t.Fatalf("storm too soft to discriminate: oblivious dropped %d", mObli.Drops)
	}
	if 3*mHeal.Drops >= mObli.Drops {
		t.Fatalf("self-healing dropped %d vs oblivious %d: no rescue", mHeal.Drops, mObli.Drops)
	}
	m2, r2 := run(true)
	if mHeal.Cycles != m2.Cycles || mHeal.Drops != m2.Drops || rHeal.Exiles != r2.Exiles {
		t.Fatalf("faulted runs diverged:\n%+v %+v\n%+v %+v", mHeal, rHeal, m2, r2)
	}
}

// TestPublicObservabilityAPI drives the observability plane through the
// facade only: a flight recorder riding a faulted self-healing run (one
// timeline holding injected faults, controller decisions and exiles), the
// text/trace dumps, and the Prometheus exposition handler over a bus.
func TestPublicObservabilityAPI(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.M = 2
	cfg.Policy = metronome.PolicyRMetronome
	cfg.Seed = 11
	cfg.RingCap = 2048
	arrivals := []metronome.Traffic{
		metronome.CBR{PPS: 150e3},
		metronome.CBR{PPS: 1e6},
	}
	evs := metronome.StragglerStorm(nil, 0, 0.08, 0.26, 0.03, 0.02)
	run := func() (*metronome.TraceRecorder, metronome.ElasticReport) {
		rec := metronome.NewTraceRecorder(0)
		c := cfg
		c.Recorder = rec
		ecfg := metronome.DefaultElasticConfig(2, 4)
		ecfg.TargetOccupancy = 0.05
		ecfg.Placement = true
		ecfg.Health = true
		_, rep := metronome.SimulateFaults(c, ecfg, arrivals, 300*time.Millisecond, evs)
		return rec, rep
	}
	rec, rep := run()

	counts := rec.CountByKind()
	if counts[metronome.TraceDecision] == 0 {
		t.Fatal("no controller decisions on the recorder")
	}
	if counts[metronome.TraceFault] == 0 {
		t.Fatal("injected fault flips did not reach the recorder")
	}
	if got := counts[metronome.TraceExile]; rep.Exiles != got {
		t.Fatalf("recorder saw %d exiles, report says %d", got, rep.Exiles)
	}
	// Every event decodes through the public aliases.
	var fault, exile bool
	for _, e := range rec.Events(nil) {
		switch e.Kind {
		case metronome.TraceFault:
			fault = true
		case metronome.TraceExile:
			exile = e.Target() >= 0
		}
	}
	if !fault || !exile {
		t.Fatalf("decode through aliases incomplete: fault=%v exile=%v", fault, exile)
	}

	// The dumps are deterministic: a re-run's text is byte-identical.
	var a, b strings.Builder
	if err := rec.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	rec2, _ := run()
	if err := rec2.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("flight-recorder text dump diverged across identical runs")
	}

	// The exposition handler serves the recorder's counters over HTTP.
	bus := metronome.NewTelemetryBus(1, 2)
	bus.RecordLatency(0, 1000)
	h := metronome.NewMetricsHandler(metronome.MetricsOptions{Bus: bus, Recorder: rec})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`metronome_events_total{kind="fault"}`,
		`metronome_events_total{kind="exile"}`,
		"metronome_queue_latency_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestSimulateRingCap pins the -cap knob: a smaller ring must actually
// bound the queue (more drops under a burst than the default ring).
func TestSimulateRingCap(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.M = 1
	cfg.Seed = 3
	cfg.Policy = metronome.PolicyFixed
	cfg.TSFixed = 300e-6 // long fixed timeout: bursts pile up between polls
	burst := metronome.CBR{PPS: 10e6}
	cfg.RingCap = 32
	small := metronome.Simulate(cfg, []metronome.Traffic{burst}, 20*time.Millisecond)
	cfg.RingCap = 0 // nic default (576)
	big := metronome.Simulate(cfg, []metronome.Traffic{burst}, 20*time.Millisecond)
	if small.Drops <= big.Drops {
		t.Fatalf("RingCap=32 dropped %d, default ring dropped %d — cap not honoured",
			small.Drops, big.Drops)
	}
}

// TestSimulatePower pins the power-plane facade: the external joules
// account is positive and consistent with the controller's internal gauge,
// and on a trough-dominated day an elastic team under the joules objective
// spends less modelled energy than the same deployment pinned at its
// budget.
func TestSimulatePower(t *testing.T) {
	cfg := metronome.DefaultSimConfig()
	cfg.M = 2
	cfg.Policy = metronome.PolicyRMetronome
	cfg.VBar = 60e-6
	cfg.Seed = 9
	cfg.RingCap = 4096
	// Mostly-idle day with a crowd in the middle third.
	crowd := func() metronome.Traffic {
		return metronome.StepTraffic{At: 0.1, Before: metronome.CBR{PPS: 0.5e6},
			After: metronome.StepTraffic{At: 0.2, Before: metronome.CBR{PPS: 8e6},
				After: metronome.CBR{PPS: 0.5e6}}}
	}
	arrivals := []metronome.Traffic{crowd(), crowd()}
	run := func(minThreads int) (metronome.ElasticReport, float64) {
		ecfg := metronome.DefaultElasticConfig(minThreads, 4)
		ecfg.Objective = metronome.ElasticObjectiveJoules
		ecfg.TargetOccupancy = 0.05
		_, rep, joules := metronome.SimulatePower(cfg, ecfg, metronome.PowerConfig{}, arrivals, 300*time.Millisecond)
		return rep, joules
	}
	repElastic, jElastic := run(2)
	repPinned, jPinned := run(4)
	if jElastic <= 0 || repElastic.Joules <= 0 || repElastic.MeanWatts <= 0 {
		t.Fatalf("degenerate energy account: external=%.3f internal=%.3f meanW=%.3f",
			jElastic, repElastic.Joules, repElastic.MeanWatts)
	}
	if repPinned.MinThreads != 4 || repPinned.MaxThreads != 4 {
		t.Fatalf("pinned arm resized: %d..%d", repPinned.MinThreads, repPinned.MaxThreads)
	}
	if jElastic >= jPinned {
		t.Fatalf("elastic spent %.3f J vs pinned %.3f J: shedding idle members saved nothing",
			jElastic, jPinned)
	}
	// The two books use one power model; over a window dominated by the
	// same deployment they must agree to first order (the internal gauge
	// samples at tick boundaries, the external one integrates residency).
	if ratio := repElastic.Joules / jElastic; ratio < 0.5 || ratio > 2 {
		t.Fatalf("internal gauge %.3f J vs external account %.3f J: books diverged",
			repElastic.Joules, jElastic)
	}
}
