// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. V). Each BenchmarkFigN/BenchmarkTableN executes the corresponding
// experiment from internal/experiments in quick mode and reports its
// headline quantity as a custom metric, so `go test -bench=.` doubles as
// the full reproduction sweep. See EXPERIMENTS.md for paper-vs-measured.
package metronome_test

import (
	"strconv"
	"testing"

	"metronome"
)

// runExperiment executes one registered experiment per benchmark iteration.
func runExperiment(b *testing.B, id string) []*metronome.ResultTable {
	b.Helper()
	var tables []*metronome.ResultTable
	for i := 0; i < b.N; i++ {
		var ok bool
		tables, ok = metronome.RunExperiment(id, true, uint64(i+1))
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
	}
	return tables
}

// metric extracts a float cell from a rendered table.
func metric(b *testing.B, t *metronome.ResultTable, row int, col string) float64 {
	b.Helper()
	for ci, c := range t.Columns {
		if c == col {
			v, err := strconv.ParseFloat(t.Rows[row][ci], 64)
			if err != nil {
				b.Fatalf("%s[%d].%s = %q", t.ID, row, col, t.Rows[row][ci])
			}
			return v
		}
	}
	b.Fatalf("%s: no column %s", t.ID, col)
	return 0
}

func BenchmarkFig1SleepServices(b *testing.B) {
	t := runExperiment(b, "fig1")[0]
	b.ReportMetric(metric(b, t, 0, "mean"), "hr_sleep_1us_mean_us")
	b.ReportMetric(metric(b, t, 1, "mean"), "nanosleep_1us_mean_us")
}

func BenchmarkFig4VacationPDF(b *testing.B) {
	t := runExperiment(b, "fig4")[0]
	b.ReportMetric(metric(b, t, 1, "KS_distance"), "KS_M3")
}

func BenchmarkTable1VacationTargets(b *testing.B) {
	t := runExperiment(b, "tab1")[0]
	b.ReportMetric(metric(b, t, 1, "measured_V_us"), "V_at_target10_us")
	b.ReportMetric(metric(b, t, 1, "N_V"), "NV_at_target10")
}

func BenchmarkFig5LatencyCPUvsVbar(b *testing.B) {
	ts := runExperiment(b, "fig5")
	b.ReportMetric(metric(b, ts[0], 3, "lat_mean_us"), "lat10G_vbar10_us")
	b.ReportMetric(metric(b, ts[0], 3, "cpu_pct"), "cpu10G_vbar10_pct")
}

func BenchmarkFig6BusyTriesVsTL(b *testing.B) {
	t := runExperiment(b, "fig6")[0]
	b.ReportMetric(metric(b, t, 2, "busy_tries_pct"), "busytries_TL500_pct")
}

func BenchmarkFig7BusyTriesVsM(b *testing.B) {
	t := runExperiment(b, "fig7")[0]
	b.ReportMetric(metric(b, t, len(t.Rows)-1, "busy_tries_pct"), "busytries_M6_pct")
}

func BenchmarkFig8LatencyVsM(b *testing.B) {
	ts := runExperiment(b, "fig8")
	b.ReportMetric(metric(b, ts[0], 4, "lat_mean_us"), "lat10G_M6_us")
	b.ReportMetric(metric(b, ts[1], 4, "lat_std_us"), "latstd1G_M6_us")
}

func BenchmarkFig9Adaptation(b *testing.B) {
	t := runExperiment(b, "fig9")[0]
	// apex row: max offered
	best, bestEst := 0.0, 0.0
	for r := range t.Rows {
		off := metric(b, t, r, "offered_mpps")
		if off > best {
			best, bestEst = off, metric(b, t, r, "estimated_mpps")
		}
	}
	b.ReportMetric(best, "offered_apex_mpps")
	b.ReportMetric(bestEst, "estimated_apex_mpps")
}

func BenchmarkFig10ThreeSystems(b *testing.B) {
	ts := runExperiment(b, "fig10")
	cpu := ts[1]
	b.ReportMetric(metric(b, cpu, 0, "static"), "static_10G_cpu_pct")
	b.ReportMetric(metric(b, cpu, 0, "metronome"), "metronome_10G_cpu_pct")
	b.ReportMetric(metric(b, cpu, 0, "xdp"), "xdp_10G_cpu_pct")
}

func BenchmarkFig11PowerGovernors(b *testing.B) {
	ts := runExperiment(b, "fig11")
	// ondemand table first: idle-power gap is the paper's headline 27%.
	od := ts[0]
	var met, st float64
	for r := range od.Rows {
		if metric(b, od, r, "rate_gbps") == 0 {
			if od.Rows[r][1] == "metronome" {
				met = metric(b, od, r, "power_w")
			} else {
				st = metric(b, od, r, "power_w")
			}
		}
	}
	b.ReportMetric((st-met)/st*100, "idle_power_saving_pct")
}

func BenchmarkTable2SharingThroughput(b *testing.B) {
	t := runExperiment(b, "tab2")[0]
	b.ReportMetric(metric(b, t, 0, "with_ferret"), "static_shared_mpps")
	b.ReportMetric(metric(b, t, 1, "with_ferret"), "metronome_shared_mpps")
}

func BenchmarkFig12FerretSlowdown(b *testing.B) {
	t := runExperiment(b, "fig12")[0]
	b.ReportMetric(metric(b, t, 0, "slowdown"), "static_slowdown_x")
	b.ReportMetric(metric(b, t, 1, "slowdown"), "metronome_slowdown_x")
}

func BenchmarkFig13MultiqueueGovernors(b *testing.B) {
	ts := runExperiment(b, "fig13")
	// first table: 2 queues, performance; first row: M=2.
	b.ReportMetric(metric(b, ts[0], 0, "cpu_pct"), "cpu_2q_M2_pct")
}

func BenchmarkFig14BusyTriesRho(b *testing.B) {
	ts := runExperiment(b, "fig14")
	t := ts[0] // 2 queues
	b.ReportMetric(metric(b, t, 0, "rho_perf"), "rho_2q_perf")
	b.ReportMetric(metric(b, t, 0, "rho_od"), "rho_2q_ondemand")
}

func BenchmarkFig15RateSweep(b *testing.B) {
	t := runExperiment(b, "fig15")[0]
	b.ReportMetric(metric(b, t, 0, "met_cpu_pct"), "cpu_37mpps_pct")
	b.ReportMetric(metric(b, t, len(t.Rows)-1, "met_cpu_pct"), "cpu_idle_pct")
}

func BenchmarkTable3Unbalanced(b *testing.B) {
	t := runExperiment(b, "tab3")[0]
	var hotRho float64
	for r := range t.Rows {
		if v := metric(b, t, r, "rho"); v > hotRho {
			hotRho = v
		}
	}
	b.ReportMetric(hotRho, "hot_queue_rho")
}

func BenchmarkFig16Applications(b *testing.B) {
	ts := runExperiment(b, "fig16")
	b.ReportMetric(metric(b, ts[0], 0, "metronome_cpu_pct"), "ipsec_peak_cpu_pct")
	b.ReportMetric(metric(b, ts[1], len(ts[1].Rows)-1, "metronome_cpu_pct"), "flowatcher_lowrate_cpu_pct")
}

func BenchmarkAblationTimeouts(b *testing.B) {
	t := runExperiment(b, "abl-timeouts")[0]
	b.ReportMetric(metric(b, t, 0, "busy_tries_pct"), "equal_timeout_busytries_pct")
	b.ReportMetric(metric(b, t, 1, "busy_tries_pct"), "split_timeout_busytries_pct")
}

func BenchmarkAblationAdaptive(b *testing.B) {
	t := runExperiment(b, "abl-adaptive")[0]
	b.ReportMetric(metric(b, t, len(t.Rows)-1, "adaptive_V_us"), "adaptive_V_at_0.5G_us")
	b.ReportMetric(metric(b, t, len(t.Rows)-1, "fixed_TS10_V_us"), "fixed_V_at_0.5G_us")
}

func BenchmarkAblationBackupSelection(b *testing.B) {
	t := runExperiment(b, "abl-backup")[0]
	b.ReportMetric(metric(b, t, 0, "loss_permille"), "random_loss_permille")
	b.ReportMetric(metric(b, t, 1, "loss_permille"), "sticky_loss_permille")
}

func BenchmarkAblationTxBatch(b *testing.B) {
	t := runExperiment(b, "abl-txbatch")[0]
	b.ReportMetric(metric(b, t, 0, "lat_std_us"), "batch32_lat_std_us")
	b.ReportMetric(metric(b, t, 1, "lat_std_us"), "batch1_lat_std_us")
}

func BenchmarkAblationSleepService(b *testing.B) {
	t := runExperiment(b, "abl-sleep")[0]
	b.ReportMetric(metric(b, t, 0, "measured_V_us"), "hrsleep_V_us")
	b.ReportMetric(metric(b, t, 1, "measured_V_us"), "nanosleep_V_us")
}

func BenchmarkAblationRobustness(b *testing.B) {
	t := runExperiment(b, "abl-robust")[0]
	b.ReportMetric(metric(b, t, 1, "tput_mpps"), "M1_hogged_mpps")
	b.ReportMetric(metric(b, t, 2, "tput_mpps"), "M3_one_hogged_mpps")
}

func BenchmarkAblationPoisson(b *testing.B) {
	t := runExperiment(b, "abl-poisson")[0]
	b.ReportMetric(metric(b, t, 0, "cpu_pct"), "cbr_linerate_cpu_pct")
	b.ReportMetric(metric(b, t, 1, "cpu_pct"), "poisson_linerate_cpu_pct")
}

func BenchmarkAblationBlendCheck(b *testing.B) {
	t := runExperiment(b, "abl-blend")[0]
	b.ReportMetric(metric(b, t, 0, "ratio"), "V_measured_over_eq10_linerate")
}

// BenchmarkSimulateThroughput measures raw simulator speed: virtual
// line-rate seconds simulated per wall second.
func BenchmarkSimulateThroughput(b *testing.B) {
	cfg := metronome.DefaultSimConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		metronome.Simulate(cfg,
			[]metronome.Traffic{metronome.CBR{PPS: metronome.LineRate64B(10)}},
			100_000_000, // 0.1 s of virtual time in ns
		)
	}
}
