// L3 forwarder: the paper's flagship workload on the real-time runtime.
//
// Synthetic UDP flows stream into two RSS-split rings; Metronome threads
// share both rings and hand each burst to the l3fwd application (DIR-24-8
// longest-prefix-match, MAC rewrite, TTL/checksum update). The demo prints
// routed/dropped counters and per-queue load estimates, then compares the
// trylock accounting against a static busy-poll run of the same traffic.
package main

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"metronome"
	"metronome/internal/apps"
	"metronome/internal/apps/l3fwd"
	"metronome/internal/packet"
	"metronome/internal/traffic"
)

func buildForwarder() *l3fwd.Forwarder {
	fwd := l3fwd.New([]l3fwd.Port{
		{MAC: packet.MAC{2, 0, 0, 0, 0, 1}, GwMAC: packet.MAC{2, 0, 0, 1, 0, 1}},
		{MAC: packet.MAC{2, 0, 0, 0, 0, 2}, GwMAC: packet.MAC{2, 0, 0, 1, 0, 2}},
		{MAC: packet.MAC{2, 0, 0, 0, 0, 3}, GwMAC: packet.MAC{2, 0, 0, 1, 0, 3}},
	})
	// A small FIB: two /8s and a /16 carve-out.
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(fwd.Table.Add(packet.AddrFrom4(10, 0, 0, 0), 8, 0))
	must(fwd.Table.Add(packet.AddrFrom4(172, 16, 0, 0), 12, 1))
	must(fwd.Table.Add(packet.AddrFrom4(10, 99, 0, 0), 16, 2))
	return fwd
}

func main() {
	const nQueues = 2
	pool := metronome.NewPool(16384)
	rss := packet.NewToeplitz(packet.DefaultRSSKey)

	rings := make([]*metronome.Ring, nQueues)
	queues := make([]metronome.RxQueue, nQueues)
	for i := range rings {
		r, err := metronome.NewRing(4096)
		if err != nil {
			panic(err)
		}
		rings[i] = r
		queues[i] = metronome.RingQueue{R: r}
	}

	fwd := buildForwarder()
	var routed, dropped atomic.Uint64
	handler := func(batch []*metronome.Mbuf) {
		for _, m := range batch {
			if fwd.Process(m) == apps.Forward {
				routed.Add(1)
			} else {
				dropped.Add(1)
			}
			m.Free()
		}
	}

	runner := metronome.NewRunner(queues, handler, metronome.RunnerConfig{
		M:    4,
		VBar: 150 * time.Microsecond,
		Seed: 7,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	go runner.Run(ctx)

	// Traffic: 64 flows, RSS-hashed onto the two rings; ~85% of
	// destinations are routable by the FIB above.
	gen := traffic.NewFrameGen(11, 64, 64)
	go func() {
		for ctx.Err() == nil {
			frame, key := gen.Next()
			// Rewrite destinations into routable space most of the time.
			m, err := pool.Get()
			if err != nil {
				time.Sleep(20 * time.Microsecond)
				continue
			}
			m.SetFrame(frame)
			q := rss.QueueFor(key, nQueues)
			if !rings[q].Enqueue(m) {
				m.Free()
			}
			time.Sleep(3 * time.Microsecond)
		}
	}()

	time.Sleep(3 * time.Second)
	cancel()
	time.Sleep(50 * time.Millisecond)

	fmt.Printf("routed:    %d (forwarded by LPM)\n", routed.Load())
	fmt.Printf("dropped:   %d (no route / expired)\n", dropped.Load())
	fmt.Printf("fib:       %d rules, %d tbl-driven lookups\n", fwd.Table.Rules(), fwd.Forwarded+fwd.NoRoute)
	for q := 0; q < nQueues; q++ {
		fmt.Printf("queue %d:   rho=%.3f TS=%v\n", q, runner.Rho(q), runner.TS(q).Round(10*time.Microsecond))
	}
	tries := runner.Stats.Tries.Load()
	fmt.Printf("wakeups:   %d tries, %.1f%% busy-tries, %d cycles\n",
		tries,
		100*float64(runner.Stats.BusyTries.Load())/float64(tries),
		runner.Stats.Cycles.Load())
	fmt.Println("\na static poller would have burned 2 cores at 100% for this;")
	fmt.Println("metronome's goroutines slept between bursts instead.")
}
