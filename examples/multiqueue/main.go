// Multiqueue capacity exploration with the simulation API: the 40 GbE
// scenario of Sec. IV-E/V-F, where RSS splits line-rate traffic over N
// queues and M >= N threads share all of them.
//
// The demo sweeps thread counts for a 4-queue XL710-class deployment at
// 37 Mpps and prints the CPU/busy-try trade-off, then shows the unbalanced
// case where one queue carries 53% of the traffic.
package main

import (
	"fmt"
	"time"

	"metronome"
	"metronome/internal/traffic"
)

func main() {
	const totalMpps = 37.0

	fmt.Println("== balanced: 4 queues, 37 Mpps, V̄=15us ==")
	fmt.Printf("%-8s %-10s %-12s %-10s %-8s\n", "threads", "cpu_pct", "busytries_%", "loss_‰", "rho")
	for m := 4; m <= 8; m++ {
		cfg := metronome.DefaultSimConfig()
		cfg.M = m
		cfg.VBar = 15e-6
		cfg.Seed = uint64(m)
		arrivals := make([]metronome.Traffic, 4)
		for i := range arrivals {
			arrivals[i] = metronome.CBR{PPS: totalMpps * 1e6 / 4}
		}
		met := metronome.Simulate(cfg, arrivals, 400*time.Millisecond)
		fmt.Printf("%-8d %-10.1f %-12.1f %-10.4f %-8.3f\n",
			m, met.CPUPercent, met.BusyTryFrac*100, met.LossRate*1000, met.RhoEst[0])
	}
	fmt.Println("(static DPDK needs 4 dedicated cores: 400% CPU, flat)")

	fmt.Println("\n== unbalanced: 3 queues, one flow carries 30% of the line ==")
	shares := traffic.UnbalancedShares(0.30, 3)
	cfg := metronome.DefaultSimConfig()
	cfg.M = 5
	cfg.VBar = 15e-6
	cfg.Seed = 99
	arrivals := make([]metronome.Traffic, 3)
	for i, s := range shares {
		arrivals[i] = metronome.CBR{PPS: totalMpps * 1e6 * s}
	}
	met := metronome.Simulate(cfg, arrivals, 400*time.Millisecond)
	for q, s := range shares {
		fmt.Printf("queue %d: share=%4.1f%%  rho=%.3f  TS=%.1fus\n",
			q, s*100, met.RhoEst[q], met.TSNow[q]*1e6)
	}
	fmt.Printf("loss: %.4f permille — the per-queue TS rule (eq 14) absorbs the skew\n",
		met.LossRate*1000)
}
