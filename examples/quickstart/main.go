// Quickstart: replace a busy-polling receive loop with Metronome.
//
// A producer goroutine plays the NIC, pushing packets into a ring at a
// varying rate. Three Metronome goroutines share the ring behind a
// trylock, sleeping adaptively between polls. The demo prints the load
// estimate, the adaptive timeout and the throughput once per second —
// watch TS stretch when the traffic thins out.
package main

import (
	"context"
	"fmt"
	"time"

	"metronome"
)

func main() {
	pool := metronome.NewPool(8192)
	ringQ, err := metronome.NewRing(4096)
	if err != nil {
		panic(err)
	}

	var processed uint64
	handler := func(batch []*metronome.Mbuf) {
		for _, m := range batch {
			processed += uint64(m.Len) // pretend to do work
			m.Free()
		}
	}

	runner := metronome.NewRunner(
		[]metronome.RxQueue{metronome.RingQueue{R: ringQ}},
		handler,
		metronome.RunnerConfig{
			M:    3,
			VBar: 200 * time.Microsecond,
			Seed: 1,
		},
	)

	ctx, cancel := context.WithTimeout(context.Background(), 6*time.Second)
	defer cancel()
	go runner.Run(ctx)

	// The "NIC": 2 seconds busy, 2 seconds quiet, 2 seconds busy.
	go func() {
		phase := []struct {
			rate time.Duration
			dur  time.Duration
		}{
			{5 * time.Microsecond, 2 * time.Second},
			{2 * time.Millisecond, 2 * time.Second},
			{5 * time.Microsecond, 2 * time.Second},
		}
		frame := make([]byte, 64)
		for _, p := range phase {
			end := time.Now().Add(p.dur)
			for time.Now().Before(end) && ctx.Err() == nil {
				if m, err := pool.Get(); err == nil {
					m.SetFrame(frame)
					if !ringQ.Enqueue(m) {
						m.Free()
					}
				}
				time.Sleep(p.rate)
			}
		}
	}()

	for i := 0; i < 6; i++ {
		time.Sleep(time.Second)
		fmt.Printf("t=%ds  packets=%d  cycles=%d  busy-tries=%d  rho=%.3f  TS=%v\n",
			i+1,
			runner.Stats.Packets.Load(),
			runner.Stats.Cycles.Load(),
			runner.Stats.BusyTries.Load(),
			runner.Rho(0),
			runner.TS(0).Round(10*time.Microsecond),
		)
	}
	fmt.Println("\nthe adaptive TS grew while the producer idled: CPU proportional to load.")
}
