// Pcap replay: generate the paper's unbalanced trace (Sec. V-F.4 — 1000
// packets, 30% one UDP flow, the rest random), write it to a real pcap
// file, then replay it in a loop through RSS onto three rings served by
// Metronome — the end-to-end path of the Table III experiment, on the
// real-time runtime instead of the simulator.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"metronome"
	"metronome/internal/packet"
	"metronome/internal/pcap"
)

func main() {
	// 1. Generate and persist the trace (1000 packets as in the paper).
	var trace bytes.Buffer
	if err := pcap.GenerateUnbalanced(&trace, 1000, 0.30, 1e6, 42); err != nil {
		panic(err)
	}
	path := "/tmp/metronome-unbalanced.pcap"
	if err := os.WriteFile(path, trace.Bytes(), 0o644); err != nil {
		panic(err)
	}
	records, err := pcap.ReadAll(bytes.NewReader(trace.Bytes()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s: %d packets, %d bytes\n", path, len(records), trace.Len())

	// 2. Three rings behind RSS, like the paper's 3 Rx queues.
	const nQueues = 3
	pool := metronome.NewPool(16384)
	rss := packet.NewToeplitz(packet.DefaultRSSKey)
	rings := make([]*metronome.Ring, nQueues)
	queues := make([]metronome.RxQueue, nQueues)
	for i := range rings {
		r, err := metronome.NewRing(4096)
		if err != nil {
			panic(err)
		}
		rings[i] = r
		queues[i] = metronome.RingQueue{R: r}
	}

	var perQueue [nQueues]atomic.Uint64
	handler := func(batch []*metronome.Mbuf) {
		for _, m := range batch {
			var p packet.Parsed
			if p.Parse(m.Bytes()) == nil {
				perQueue[rss.QueueFor(p.Key, nQueues)].Add(1)
			}
			m.Free()
		}
	}
	runner := metronome.NewRunner(queues, handler, metronome.RunnerConfig{
		M:    5,
		VBar: 150 * time.Microsecond,
		Seed: 9,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go runner.Run(ctx)

	// 3. Replay the trace 200 times, pacing compressed ~20x.
	sent := 0
	start := time.Now()
	pcap.Replay(records, 200, func(ts float64, frame []byte) {
		var p packet.Parsed
		if p.Parse(frame) != nil {
			return
		}
		// pace (compressed): wait until the scaled timestamp
		target := time.Duration(ts / 20 * float64(time.Second))
		if d := target - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		m, err := pool.Get()
		if err != nil {
			return // overrun: drop, like a NIC would
		}
		m.SetFrame(frame)
		if !rings[rss.QueueFor(p.Key, nQueues)].Enqueue(m) {
			m.Free()
			return
		}
		sent++
	})
	time.Sleep(100 * time.Millisecond)
	cancel()
	time.Sleep(50 * time.Millisecond)

	fmt.Printf("replayed %d packets through %d queues\n", sent, nQueues)
	total := uint64(0)
	for q := range perQueue {
		total += perQueue[q].Load()
	}
	for q := range perQueue {
		share := 100 * float64(perQueue[q].Load()) / float64(total)
		fmt.Printf("queue %d: %6d packets (%4.1f%%)  rho=%.3f  TS=%v\n",
			q, perQueue[q].Load(), share, runner.Rho(q), runner.TS(q).Round(10*time.Microsecond))
	}
	fmt.Println("\nthe heavy flow pins one queue at ~53% of the traffic (Table III's skew);")
	fmt.Println("eq (14) gives that queue a tighter TS while the light queues relax.")
}
