// IPsec security gateway on Metronome: ESP tunnel-mode encryption
// (AES-128-CBC + HMAC-SHA1-96) of every packet crossing the gateway, with
// the retrieval threads sleeping adaptively between bursts.
//
// The demo encrypts outbound traffic for 2 seconds, then replays the
// encrypted stream back through the gateway to decapsulate it, verifying
// integrity end to end — the same inbound+outbound roles the paper's
// ipsec-secgw plays.
package main

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"metronome"
	"metronome/internal/apps"
	"metronome/internal/apps/ipsecgw"
	"metronome/internal/packet"
)

func main() {
	pool := metronome.NewPool(8192)
	rx, err := metronome.NewRing(4096)
	if err != nil {
		panic(err)
	}

	gw := ipsecgw.New(99)
	sa := &ipsecgw.SA{
		SPI:       0xbeef,
		EncKey:    [16]byte{0: 1, 5: 2, 15: 3},
		AuthKey:   [20]byte{0: 4, 10: 5, 19: 6},
		TunnelSrc: packet.AddrFrom4(192, 0, 2, 1),
		TunnelDst: packet.AddrFrom4(198, 51, 100, 7),
	}
	if err := gw.AddSA(sa, packet.AddrFrom4(10, 0, 0, 0), 8); err != nil {
		panic(err)
	}

	// Encrypted packets loop back into the same ring for decapsulation,
	// exactly like a gateway fed by both sides of the tunnel.
	var encap, decap, drop atomic.Uint64
	var loopback func(m *metronome.Mbuf)
	handler := func(batch []*metronome.Mbuf) {
		for _, m := range batch {
			var p packet.Parsed
			inbound := p.Parse(m.Bytes()) == nil && p.IP.Protocol == packet.ProtoESP
			switch gw.Process(m) {
			case apps.Forward:
				if inbound {
					decap.Add(1)
					m.Free()
				} else {
					encap.Add(1)
					loopback(m)
				}
			default:
				drop.Add(1)
				m.Free()
			}
		}
	}
	loopback = func(m *metronome.Mbuf) {
		if !rx.Enqueue(m) {
			m.Free()
		}
	}

	runner := metronome.NewRunner(
		[]metronome.RxQueue{metronome.RingQueue{R: rx}},
		handler,
		metronome.RunnerConfig{M: 3, VBar: 200 * time.Microsecond, Seed: 3},
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go runner.Run(ctx)

	// Produce cleartext packets destined for the protected subnet.
	buf := make([]byte, 256)
	sent := 0
	for ctx.Err() == nil {
		m, err := pool.Get()
		if err != nil {
			time.Sleep(50 * time.Microsecond)
			continue
		}
		frame, _ := packet.BuildUDP(buf, 80,
			packet.AddrFrom4(172, 16, 0, byte(sent%250+1)),
			packet.AddrFrom4(10, 1, 2, byte(sent%250+1)),
			uint16(1024+sent%1000), 4500)
		m.SetFrame(frame)
		if !rx.Enqueue(m) {
			m.Free()
		} else {
			sent++
		}
		time.Sleep(10 * time.Microsecond)
	}
	time.Sleep(100 * time.Millisecond)

	fmt.Printf("cleartext sent:   %d\n", sent)
	fmt.Printf("encapsulated:     %d (ESP tunnel mode, AES-128-CBC + HMAC-SHA1-96)\n", encap.Load())
	fmt.Printf("decapsulated:     %d (authenticated and decrypted)\n", decap.Load())
	fmt.Printf("dropped:          %d (auth failures: %d, replays: %d)\n",
		drop.Load(), gw.AuthFailures, gw.Replays)
	fmt.Printf("load estimate:    rho=%.3f TS=%v\n", runner.Rho(0), runner.TS(0).Round(10*time.Microsecond))
	fmt.Println("\nthe paper reaches the same 5.61 Mpps ceiling with Metronome as with")
	fmt.Println("static polling — at this rate one thread simply never releases the lock.")
}
