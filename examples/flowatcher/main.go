// FloWatcher on Metronome: run-to-completion traffic monitoring where the
// retrieval thread itself computes per-flow and per-packet statistics —
// the paper's most challenging single-thread scenario, because every CPU
// cycle spent on statistics stretches the busy period.
//
// The traffic mix reproduces the paper's unbalanced multiqueue workload:
// 30% of packets belong to one heavy UDP flow, the rest are spread across
// random flows. The monitor identifies the heavy hitter and reports flow
// statistics and sketch accuracy.
package main

import (
	"context"
	"fmt"
	"time"

	"metronome"
	"metronome/internal/apps/flowatcher"
	"metronome/internal/packet"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

func main() {
	pool := metronome.NewPool(8192)
	rx, err := metronome.NewRing(4096)
	if err != nil {
		panic(err)
	}

	mon := flowatcher.New()
	start := time.Now()
	mon.Clock = func() float64 { return time.Since(start).Seconds() }

	handler := func(batch []*metronome.Mbuf) {
		for _, m := range batch {
			mon.Process(m)
			m.Free()
		}
	}
	runner := metronome.NewRunner(
		[]metronome.RxQueue{metronome.RingQueue{R: rx}},
		handler,
		metronome.RunnerConfig{M: 3, VBar: 150 * time.Microsecond, Seed: 5},
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go runner.Run(ctx)

	// 30% heavy flow + 70% across 128 random flows (Sec. V-F.4's pcap).
	heavy := packet.FlowKey{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(10, 0, 0, 2),
		SrcPort: 5000, DstPort: 5001, Proto: packet.ProtoUDP,
	}
	gen := traffic.NewFrameGen(21, 128, 64)
	rng := xrand.New(77)
	buf := make([]byte, 256)
	sent := 0
	for ctx.Err() == nil {
		m, err := pool.Get()
		if err != nil {
			time.Sleep(50 * time.Microsecond)
			continue
		}
		if rng.Bernoulli(0.30) {
			frame, _ := packet.BuildUDP(buf, 64, heavy.Src, heavy.Dst, heavy.SrcPort, heavy.DstPort)
			m.SetFrame(frame)
		} else {
			frame, _ := gen.Next()
			m.SetFrame(frame)
		}
		if !rx.Enqueue(m) {
			m.Free()
		} else {
			sent++
		}
		time.Sleep(5 * time.Microsecond)
	}
	time.Sleep(100 * time.Millisecond)

	fmt.Printf("packets monitored: %d of %d sent, %d flows\n", mon.Packets, sent, mon.FlowCount())
	fmt.Printf("mean size: %.1fB   mean interarrival: %v\n",
		mon.Sizes.Mean(), time.Duration(mon.Interarrival.Mean()*float64(time.Second)))
	fmt.Println("top flows (exact table vs count-min sketch):")
	for i, k := range mon.TopK(3) {
		fs, _ := mon.Flow(k)
		share := 100 * float64(fs.Packets) / float64(mon.Packets)
		fmt.Printf("  #%d %-40v pkts=%-7d (%.1f%%)  sketch=%d\n",
			i+1, k, fs.Packets, share, mon.Sketch.Estimate(k))
	}
	fmt.Printf("\nretrieval side: rho=%.3f TS=%v busy-tries=%d\n",
		runner.Rho(0), runner.TS(0).Round(10*time.Microsecond), runner.Stats.BusyTries.Load())
	fmt.Println("the heavy hitter should carry ~30% — FloWatcher's counters stay exact")
	fmt.Println("even though the monitoring thread sleeps between bursts.")
}
