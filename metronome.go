// Package metronome is a Go implementation of Metronome — adaptive and
// precise intermittent packet retrieval (Faltelli et al., CoNEXT 2020).
//
// Metronome replaces the continuous busy-polling of DPDK-style packet
// frameworks with a sleep&wake discipline: a small team of threads shares
// each receive queue behind a trylock; the winner drains the queue, then
// everyone sleeps for timeouts chosen by an analytical model so that the
// mean time a queue goes unwatched (the "vacation period") stays at a
// configurable target across traffic loads. CPU drops from 100% per core
// to a duty cycle proportional to the load, at a bounded latency cost.
//
// The package exposes three layers:
//
//   - The real-time runtime (NewRunner): goroutines, atomic trylocks and
//     adaptive timeouts over any non-blocking packet source — the part an
//     application embeds.
//   - The analytical model (AdaptiveTS, VacationCDF, ...): the closed
//     forms of the paper's Sec. IV, reusable for capacity planning.
//   - The simulation and experiment harness (Simulate, Experiments):
//     a discrete-event twin of the runtime that regenerates every table
//     and figure of the paper's evaluation. See DESIGN.md and
//     EXPERIMENTS.md.
package metronome

import (
	"time"

	"metronome/internal/apps"
	"metronome/internal/core"
	"metronome/internal/elastic"
	"metronome/internal/experiments"
	"metronome/internal/faults"
	"metronome/internal/hrtimer"
	"metronome/internal/mbuf"
	"metronome/internal/model"
	"metronome/internal/nic"
	"metronome/internal/obsv"
	"metronome/internal/packet"
	"metronome/internal/power"
	"metronome/internal/ring"
	"metronome/internal/runtime"
	"metronome/internal/sched"
	"metronome/internal/sim"
	"metronome/internal/stats"
	"metronome/internal/telemetry"
	"metronome/internal/traffic"
	"metronome/internal/xrand"
)

// --- real-time runtime -------------------------------------------------------

// Aliases re-export the real-time layer so callers outside this module can
// use it without touching internal import paths.
type (
	// Mbuf is one packet buffer leased from a Pool.
	Mbuf = mbuf.Mbuf
	// Pool is a fixed-size packet-buffer pool (rte_mempool analogue): a
	// lock-free shared ring fronted by per-thread magazine caches.
	Pool = mbuf.Pool
	// PoolCache is a per-goroutine magazine over a Pool (the rte_mempool
	// per-lcore cache analogue): GetBurst/PutBurst serve and absorb whole
	// bursts locally and touch the shared ring only in watermark-sized
	// spans. Build one per producer or consumer goroutine with
	// Pool.NewCache; retiring goroutines must Flush.
	PoolCache = mbuf.Cache
	// PoolRecycler batches frees across bursts and pools for consumer
	// goroutines (one per goroutine; the zero value is ready; Flush on
	// retirement).
	PoolRecycler = mbuf.Recycler
	// RxQueue is any non-blocking burst packet source.
	RxQueue = runtime.RxQueue
	// RingQueue adapts a Ring to RxQueue.
	RingQueue = runtime.RingQueue
	// Handler consumes bursts of packets; it owns freeing the mbufs.
	Handler = runtime.Handler
	// RunnerConfig tunes a Runner; the zero value takes paper defaults.
	RunnerConfig = runtime.Config
	// Runner drives M goroutines over N shared queues, Metronome style.
	Runner = runtime.Runner
	// StaticPoller is the busy-polling comparator (Listing 1).
	StaticPoller = runtime.StaticPoller
	// RxRing is a ring-backed RxQueue with its producer side exposed;
	// NewRxRing picks the cheapest safe ring specialisation.
	RxRing = runtime.RxRing
	// SPSCQueue adapts a single-producer/single-consumer ring to RxRing —
	// the fast path for queues with exactly one producer and one consumer.
	SPSCQueue = runtime.SPSCQueue
	// Sleeper abstracts the sleep service used between polls.
	Sleeper = hrtimer.Sleeper
	// GoSleeper sleeps with plain time.Sleep.
	GoSleeper = hrtimer.GoSleeper
	// SpinSleeper trades a little CPU for hr_sleep-like precision.
	SpinSleeper = hrtimer.SpinSleeper
	// Ring is a bounded MPMC packet ring (rte_ring analogue).
	Ring = ring.MPMC[*mbuf.Mbuf]
	// FlowKey is an IPv4 5-tuple.
	FlowKey = packet.FlowKey
)

// NewPool preallocates n packet buffers.
func NewPool(n int) *Pool { return mbuf.NewPool(n) }

// FreeMbufBurst returns a whole burst to its pools in bulk — one ring
// enqueue per same-pool run instead of one per packet. Goroutines that free
// repeatedly should hold a PoolRecycler (or a PoolCache) instead, so
// returns also batch across bursts.
func FreeMbufBurst(ms []*Mbuf) { mbuf.FreeBurst(ms) }

// Nanotime reads the process-local monotonic clock Mbuf.RxStampNs is
// denominated in: producers stamp arrivals with it, consumers subtract
// their own read to get a retrieval latency.
func Nanotime() int64 { return mbuf.Nanotime() }

// NewRing builds a packet ring; capacity must be a power of two >= 2.
func NewRing(capacity int) (*Ring, error) {
	return ring.NewMPMC[*mbuf.Mbuf](capacity)
}

// NewRxRing builds a ring-backed Rx queue and selects the specialisation
// automatically: the SPSC fast path when the queue has exactly one producer
// and one consumer, the MPMC ring otherwise. A Runner counts as one
// consumer per queue regardless of its thread count — its per-queue trylock
// serialises every poll and the lock hand-off publishes each drain to the
// next holder.
func NewRxRing(capacity, producers, consumers int) (RxRing, error) {
	return runtime.NewRxRing(capacity, producers, consumers)
}

// NewRunner builds the real-time Metronome over the given queues.
func NewRunner(queues []RxQueue, handler Handler, cfg RunnerConfig) *Runner {
	return runtime.New(queues, handler, cfg)
}

// --- application plane --------------------------------------------------------

// The application plane is the burst-native processor contract the sample
// applications (l3fwd, ipsec-secgw, flowatcher) implement: one virtual
// dispatch per burst, verdicts written into a caller-owned buffer, zero
// allocations per burst in steady state.
type (
	// Verdict is a processor's per-packet decision (Forward/Drop/Consume).
	Verdict = apps.Verdict
	// Processor is the per-packet application contract (calibration shim).
	Processor = apps.Processor
	// BurstProcessor processes packets a PollBurst at a time — the
	// application-plane fast path NewProcRunner dispatches to.
	BurstProcessor = apps.BurstProcessor
	// PerPacket adapts a per-packet Processor to BurstProcessor (the
	// calibration shim the benchmarks compare the native paths against).
	PerPacket = apps.PerPacket
	// EmitFunc disposes of a served burst in the processor path.
	EmitFunc = runtime.EmitFunc
)

// FreeAll is the default EmitFunc: recycle every mbuf into its pool.
func FreeAll(q int, ms []*Mbuf, verdicts []Verdict) { runtime.FreeAll(q, ms, verdicts) }

// NewProcRunner builds the real-time Metronome on the application plane:
// queue q's drains go straight to procs[q].ProcessBurst, then to emit (nil
// emit frees every mbuf). One processor per queue is the sharding contract —
// the per-queue trylock serialises drains, so procs[q] is single-writer.
func NewProcRunner(queues []RxQueue, procs []BurstProcessor, emit EmitFunc, cfg RunnerConfig) *Runner {
	return runtime.NewProc(queues, procs, emit, cfg)
}

// --- scheduling policies -----------------------------------------------------

// Both the simulation twin (SimConfig.Policy) and the real-time runtime
// (RunnerConfig.Policy) select their sleep&wake discipline by name from the
// sched registry; the same Policy implementation drives both substrates.
type (
	// SchedPolicy is one sleep&wake scheduling discipline: timeout
	// selection, load estimation, and backup queue choice.
	SchedPolicy = sched.Policy
	// SchedConfig parameterises a policy for one deployment.
	SchedConfig = sched.Config
	// RhoEstimator is the shared per-queue EWMA load estimator (eq. 11).
	RhoEstimator = sched.RhoEstimator
	// SchedGroupPolicy is the optional Policy extension shared-queue
	// disciplines implement: per-queue service groups, home queues, and
	// CAS-claimed service turns.
	SchedGroupPolicy = sched.GroupPolicy
	// SchedResizable is the optional Policy extension resizable
	// disciplines implement: adopting a new thread-team size online.
	SchedResizable = sched.Resizable
	// SchedRebalancer is the optional Resizable extension placement-aware
	// disciplines implement: adopting an arbitrary per-queue thread
	// assignment online (rmetronome/worksteal swap a full home/rank/size
	// layout behind one atomic pointer).
	SchedRebalancer = sched.Rebalancer
	// SchedDephaser is the optional Policy extension for turn-aware wake
	// de-phasing of shared-queue groups.
	SchedDephaser = sched.Dephaser
)

// Built-in policy names for SimConfig.Policy / RunnerConfig.Policy.
const (
	// PolicyAdaptive is the paper's eq. (13)/(14) discipline.
	PolicyAdaptive = sched.NameAdaptive
	// PolicyFixed sleeps a constant short timeout.
	PolicyFixed = sched.NameFixed
	// PolicyBusyPoll never sleeps — classic DPDK polling (Listing 1).
	PolicyBusyPoll = sched.NameBusyPoll
	// PolicyRMetronome binds threads into stable per-queue service groups
	// of r = M/N members with CAS-claimed service turns and uniform backup
	// re-targeting (the shared-queue discipline behind fig. 13-15).
	PolicyRMetronome = sched.NameRMetronome
	// PolicyWorkSteal is PolicyRMetronome with work-stealing backup
	// selection: lost-race threads re-target the sibling queue with the
	// highest observed occupancy instead of a uniform random pick.
	PolicyWorkSteal = sched.NameWorkSteal
	// PolicyUniformVac is the uniform-vacation ablation: the high-load
	// eq. (6) inversion pinned at every load, isolating what the eq. (11)
	// load estimator buys (see the abl-uniformvac experiment).
	PolicyUniformVac = sched.NameUniformVac
)

// NewPolicy instantiates a registered scheduling discipline by name.
func NewPolicy(name string, cfg SchedConfig) (SchedPolicy, error) { return sched.New(name, cfg) }

// RegisterPolicy installs a custom discipline; it becomes selectable by
// name in the simulator, the live runtime, the experiments and the CLIs.
func RegisterPolicy(name string, factory func(SchedConfig) SchedPolicy) {
	sched.Register(name, factory)
}

// PolicyNames lists the registered disciplines.
func PolicyNames() []string { return sched.Names() }

// --- elastic control plane ----------------------------------------------------

// The elastic control plane autoscales the retrieval team over a live
// telemetry bus: both the simulation twin (SimulateElastic) and the live
// runtime honour mid-run resizes. Wire a live deployment by sharing one
// TelemetryBus between RunnerConfig.Bus and NewElasticController, then run
// the controller loop: go ctrl.Run(ctx).
type (
	// TelemetryBus is the lock-free fixed-slot telemetry plane both
	// substrates publish into (per-queue occupancy/rho/loss counters,
	// per-thread duty) and the elastic controller samples.
	TelemetryBus = telemetry.Bus
	// TelemetrySnapshot is a caller-owned sample of a whole bus.
	TelemetrySnapshot = telemetry.Snapshot
	// LatencyHistogram is the fidelity plane's fixed-bucket log-scale
	// histogram: both substrates record every packet's retrieval latency
	// into one per queue on the bus (TelemetryBus.RecordLatency, one atomic
	// add, zero allocations) and TelemetryBus.SampleLatency folds a queue's
	// counts into a caller-owned copy for exact quantiles at <=3.2%
	// relative resolution. Useful standalone for any latency-shaped data.
	LatencyHistogram = stats.LogHistogram
	// ElasticConfig tunes the control plane: control period, core budget,
	// occupancy target, PI gains, hysteresis and cooldown.
	ElasticConfig = elastic.Config
	// ElasticController is the occupancy/loss PI controller driving a
	// resizable team.
	ElasticController = elastic.Controller
	// ElasticReport summarises a controller window: thread-seconds,
	// resize count, team-size envelope.
	ElasticReport = elastic.Report
	// ElasticTeam is anything the controller can resize; Runner and the
	// sim twin's core.Runtime both implement it.
	ElasticTeam = elastic.Team
	// ElasticActuator is a Team that can adopt a full per-queue placement
	// plan (ApplyPlacement); both substrates implement it, and the
	// controller's placement law (ElasticConfig.Placement) actuates
	// through it with SetTeamSize retained as the balanced special case.
	ElasticActuator = elastic.Actuator
	// ElasticPlan is one placement actuation: a team total and its
	// per-queue apportionment.
	ElasticPlan = elastic.Plan
	// ElasticObjective selects the cost model the controller's size law
	// minimises against loss (ElasticConfig.Objective).
	ElasticObjective = elastic.Objective
)

// The elastic size-law objectives.
const (
	// ElasticObjectiveThreadSeconds (the zero value) is the original law:
	// every provisioned thread-second costs the same, so the controller
	// holds wake-time occupancy at the target with the smallest team.
	ElasticObjectiveThreadSeconds = elastic.ObjectiveThreadSeconds
	// ElasticObjectiveJoules prices teams with ElasticConfig.Power
	// instead: the occupancy target inflates by the modelled relative
	// saving of shedding a member, so the controller idles smaller teams
	// when the energy model says a release pays, while the loss override
	// still forces growth when packets drop.
	ElasticObjectiveJoules = elastic.ObjectiveJoules
)

// NewTelemetryBus builds a bus over nQueues queues and maxThreads thread
// slots (size it for the elastic budget, not the initial team).
func NewTelemetryBus(nQueues, maxThreads int) *TelemetryBus {
	return telemetry.NewBus(nQueues, maxThreads)
}

// DefaultElasticConfig returns the shipped controller tuning for a team
// bounded by [minThreads, budget].
func DefaultElasticConfig(minThreads, budget int) ElasticConfig {
	return elastic.DefaultConfig(minThreads, budget)
}

// NewElasticController builds a controller driving team from the telemetry
// published on bus.
func NewElasticController(bus *TelemetryBus, team ElasticTeam, cfg ElasticConfig) *ElasticController {
	return elastic.New(bus, team, cfg)
}

// --- fault plane ---------------------------------------------------------------

// The fault plane injects deterministic failures underneath either
// substrate: wire an injector into RunnerConfig.Faults (or SimConfig.Faults)
// and flip its flags from tests, chaos schedules, or SimulateFaults. The
// elastic controller's health layer (ElasticConfig.Health) is the matching
// defence: heartbeat liveness, stale-gauge rejection, straggler exile and a
// safe-team fallback.
type (
	// FaultInjector is the shared set of atomic fault flags both substrates
	// consult on their cycle paths. A nil injector costs one branch.
	FaultInjector = faults.Injector
	// FaultEvent is one scheduled flag flip (at virtual time At).
	FaultEvent = faults.Event
	// FaultKind enumerates the failure vocabulary.
	FaultKind = faults.Kind
)

// The injectable failure kinds.
const (
	// FaultThreadStall preempts a member until the Until timestamp.
	FaultThreadStall = faults.ThreadStall
	// FaultThreadDeath removes a member outright until revived.
	FaultThreadDeath = faults.ThreadDeath
	// FaultThreadRevive returns a dead member to service.
	FaultThreadRevive = faults.ThreadRevive
	// FaultQueueBlackout makes a queue's drains see an empty ring.
	FaultQueueBlackout = faults.QueueBlackout
	// FaultQueueRecover ends a blackout.
	FaultQueueRecover = faults.QueueRecover
	// FaultTelemetryFreeze pins a queue's gauges at their last values.
	FaultTelemetryFreeze = faults.TelemetryFreeze
	// FaultTelemetryThaw resumes a queue's gauge publishing.
	FaultTelemetryThaw = faults.TelemetryThaw
	// FaultControllerDown suppresses the controller's tick source.
	FaultControllerDown = faults.ControllerDown
	// FaultControllerUp restores the controller's tick source.
	FaultControllerUp = faults.ControllerUp
)

// NewFaultInjector builds an injector over maxThreads thread slots and
// nQueues queues (size it for the elastic budget, not the initial team).
func NewFaultInjector(maxThreads, nQueues int) *FaultInjector {
	return faults.New(maxThreads, nQueues)
}

// StragglerStorm appends a periodic stall storm against one thread: every
// period in [from, before), the thread stalls for stall seconds.
func StragglerStorm(evs []FaultEvent, thread int, from, before, period, stall float64) []FaultEvent {
	return faults.Storm(evs, thread, from, before, period, stall)
}

// --- observability plane -------------------------------------------------------

// The observability plane watches the control plane without perturbing it:
// a lock-free flight recorder of structured events (decisions, placement
// swaps, exiles, safe-mode edges, fault flips) wired in through
// RunnerConfig.Recorder / ElasticConfig.Recorder, and a stdlib-only
// Prometheus/expvar exporter over the telemetry bus. Recording costs zero
// allocations per event; a nil recorder costs one branch.
type (
	// TraceRecorder is the flight recorder: a fixed-capacity lock-free
	// ring of control-plane events, dumpable as text or Chrome trace JSON.
	TraceRecorder = obsv.Recorder
	// TraceEvent is one decoded flight-recorder entry.
	TraceEvent = obsv.Event
	// TraceEventKind identifies what a TraceEvent describes.
	TraceEventKind = obsv.Kind
	// MetricsHandler serves the telemetry bus (and optionally a recorder)
	// as Prometheus text-format exposition; it is an http.Handler.
	MetricsHandler = obsv.Metrics
	// MetricsOptions wires a MetricsHandler to its sources.
	MetricsOptions = obsv.ExportOptions
)

// Flight-recorder event kinds, for filtering TraceRecorder.Events output.
const (
	// TraceDecision is one elastic controller tick.
	TraceDecision = obsv.EvDecision
	// TracePlacement is a standalone per-queue apportionment swap.
	TracePlacement = obsv.EvPlacement
	// TraceExile marks a straggler latched out of its service group.
	TraceExile = obsv.EvExile
	// TraceRecover marks an exiled thread readmitted.
	TraceRecover = obsv.EvRecover
	// TraceSafeEnter marks the controller freezing on stale telemetry.
	TraceSafeEnter = obsv.EvSafeEnter
	// TraceSafeExit marks telemetry freshness restored.
	TraceSafeExit = obsv.EvSafeExit
	// TraceDarkLoss is a reconciler-detected silent drop window.
	TraceDarkLoss = obsv.EvDarkLoss
	// TraceFault is an injected fault flag flip (see AttachFaultTrace).
	TraceFault = obsv.EvFault
	// TraceRateLimit marks a resize withheld by the actuation governor.
	TraceRateLimit = obsv.EvRateLimit
	// TracePanic is a controller-tick panic swallowed by the watchdog.
	TracePanic = obsv.EvPanic
)

// NewTraceRecorder builds a flight recorder holding the most recent
// capacity events (<= 0 selects the default, 4096).
func NewTraceRecorder(capacity int) *TraceRecorder { return obsv.NewRecorder(capacity) }

// NewMetricsHandler builds the Prometheus exposition handler; mount it on
// any mux (conventionally at /metrics) and point a scraper — or the
// metrotop operator view — at it.
func NewMetricsHandler(opt MetricsOptions) *MetricsHandler { return obsv.NewMetrics(opt) }

// AttachFaultTrace routes a fault injector's flag flips into the flight
// recorder, so injected failures appear on the same timeline as the
// control loop's reactions to them. Nil-safe on both arguments.
func AttachFaultTrace(inj *FaultInjector, rec *TraceRecorder) { obsv.AttachFaults(inj, rec) }

// --- power plane ---------------------------------------------------------------

// The power plane prices a deployment's sleep-state residency with a
// calibrated core-only CPU model: busy time at the running frequency's
// active power, short vacations at the shallow-idle floor, released or
// surplus cores parked in the deep C-state. The joules objective
// (ElasticObjectiveJoules) steers the controller with the same model.
type (
	// PowerConfig is the CPU power calibration (DefaultPowerConfig ships
	// the Xeon Silver 4110 numbers the experiments use).
	PowerConfig = power.Config
	// PowerResidency is one window's sleep-state account: busy, shallow-
	// idle and parked seconds plus the mean sleep dwell that splits
	// shallow from deep residency.
	PowerResidency = power.Residency
	// EnergyMeter integrates modelled watts over virtual or wall time
	// (trapezoid rule) into joules.
	EnergyMeter = power.Energy
)

// DefaultPowerConfig returns the shipped calibration (Xeon Silver 4110,
// the paper's testbed CPU).
func DefaultPowerConfig() PowerConfig { return power.DefaultConfig() }

// --- analytical model ---------------------------------------------------------

// AdaptiveTS is eq. (13)/(14): the short timeout that holds the mean
// vacation period at target for m threads sharing n queues under per-queue
// load rho.
func AdaptiveTS(target time.Duration, rho float64, m, n int) time.Duration {
	ts := model.TSForTargetMultiqueue(target.Seconds(), rho, m, n)
	return time.Duration(ts * float64(time.Second))
}

// EstimateRho is eq. (4): the load estimate from a measured busy and
// vacation period.
func EstimateRho(busy, vacation time.Duration) float64 {
	return model.Rho(busy.Seconds(), vacation.Seconds())
}

// VacationCDF is eq. (5): P(V <= x) at high load for timeouts ts/tl and m
// threads.
func VacationCDF(x, ts, tl time.Duration, m int) float64 {
	return model.CDFVHighLoad(x.Seconds(), ts.Seconds(), tl.Seconds(), m)
}

// ExpectedVacation is eq. (6): the mean vacation period at high load.
func ExpectedVacation(ts, tl time.Duration, m int) time.Duration {
	return time.Duration(model.EVHighLoad(ts.Seconds(), tl.Seconds(), m) * float64(time.Second))
}

// --- simulation --------------------------------------------------------------

// SimConfig parameterises the discrete-event twin; see the fields of
// internal/core.Config.
type SimConfig = core.Config

// SimMetrics summarises one simulated run.
type SimMetrics = core.Metrics

// DefaultSimConfig mirrors the paper's single-queue tuning (M=3, V̄=10us,
// TL=500us, l3fwd-grade service rate).
func DefaultSimConfig() SimConfig { return core.DefaultConfig() }

// Arrival processes for Simulate.
type (
	// Traffic is an arrival process over virtual time.
	Traffic = traffic.Process
	// CBR is constant-rate traffic (packets/second).
	CBR = traffic.CBR
	// PoissonTraffic has memoryless arrivals.
	PoissonTraffic = traffic.Poisson
	// RampTraffic is the MoonGen up-down sweep of the adaptation test.
	RampTraffic = traffic.Ramp
	// SineTraffic is the diurnal day/night load curve of the elastic
	// experiments (rate Base + Amp*sin(2*pi*t/Period), floored at 0).
	SineTraffic = traffic.Sine
	// StepTraffic switches between two arrival processes at a fixed time
	// — flash-crowd edges and hot-queue migrations; Steps nest.
	StepTraffic = traffic.Step
)

// LineRate64B converts Gbit/s to 64-byte-frame packets/second (10 Gbit/s
// -> 14.88 Mpps).
func LineRate64B(gbps float64) float64 { return traffic.Rate64B(gbps) }

// Simulate runs the discrete-event Metronome over one arrival process per
// queue for the given virtual duration and returns its metrics.
func Simulate(cfg SimConfig, arrivals []Traffic, duration time.Duration) SimMetrics {
	eng := sim.New()
	root := xrand.New(cfg.Seed)
	queues := make([]*nic.Queue, len(arrivals))
	for i, p := range arrivals {
		queues[i] = nic.NewQueue(i, p, root.Split(), ringOptions(cfg))
	}
	rt := core.New(eng, queues, cfg)
	rt.Start()
	d := duration.Seconds()
	eng.RunUntil(d)
	return rt.Snapshot(d)
}

// SimulateElastic is Simulate with the elastic control plane attached: a
// telemetry bus wired into the deployment, a controller resizing the
// thread team every control period (driven by engine events, so runs stay
// deterministic per seed), and the controller's provisioning report
// alongside the metrics. cfg.M is the starting team; ecfg bounds it.
func SimulateElastic(cfg SimConfig, ecfg ElasticConfig, arrivals []Traffic, duration time.Duration) (SimMetrics, ElasticReport) {
	eng := sim.New()
	root := xrand.New(cfg.Seed)
	queues := make([]*nic.Queue, len(arrivals))
	for i, p := range arrivals {
		queues[i] = nic.NewQueue(i, p, root.Split(), ringOptions(cfg))
	}
	budget := cfg.M
	if ecfg.Budget > budget {
		budget = ecfg.Budget
	}
	cfg.Bus = telemetry.NewBus(len(arrivals), budget)
	rt := core.New(eng, queues, cfg)
	rt.Start()
	if ecfg.MinThreads == 0 {
		ecfg.MinThreads = len(arrivals)
	}
	if ecfg.Recorder == nil {
		ecfg.Recorder = cfg.Recorder
	}
	ctrl := elastic.New(cfg.Bus, rt, ecfg)
	eng.Ticker(ctrl.Config().Period, "elastic-tick", func() { ctrl.Tick(eng.Now()) })
	d := duration.Seconds()
	eng.RunUntil(d)
	rep := ctrl.Report(d)
	rep.ThreadSeconds = rt.ProvisionedThreadSeconds(d)
	if d > 0 {
		rep.MeanThreads = rep.ThreadSeconds / d
	}
	return rt.Snapshot(d), rep
}

// SimulateFaults is SimulateElastic under a deterministic fault schedule:
// events fire as engine events against an injector wired into the
// deployment (cfg.Faults is overwritten), and ControllerDown windows
// suppress the controller's tick source. With ecfg.Health set, this is the
// self-healing loop of the fig-faults experiment; without it, the oblivious
// baseline. With cfg.Recorder set, injected fault flips and the control
// loop's reactions land on one flight-recorder timeline. Runs are
// byte-identical per seed at any parallelism.
func SimulateFaults(cfg SimConfig, ecfg ElasticConfig, arrivals []Traffic, duration time.Duration, events []FaultEvent) (SimMetrics, ElasticReport) {
	eng := sim.New()
	root := xrand.New(cfg.Seed)
	queues := make([]*nic.Queue, len(arrivals))
	for i, p := range arrivals {
		queues[i] = nic.NewQueue(i, p, root.Split(), ringOptions(cfg))
	}
	budget := cfg.M
	if ecfg.Budget > budget {
		budget = ecfg.Budget
	}
	cfg.Bus = telemetry.NewBus(len(arrivals), budget)
	inj := faults.New(budget, len(arrivals))
	cfg.Faults = inj
	obsv.AttachFaults(inj, cfg.Recorder)
	rt := core.New(eng, queues, cfg)
	rt.Start()
	if ecfg.MinThreads == 0 {
		ecfg.MinThreads = len(arrivals)
	}
	if ecfg.Recorder == nil {
		ecfg.Recorder = cfg.Recorder
	}
	ctrl := elastic.New(cfg.Bus, rt, ecfg)
	eng.Ticker(ctrl.Config().Period, "elastic-tick", func() {
		if !inj.ControllerSuppressed() {
			ctrl.Tick(eng.Now())
		}
	})
	faults.Schedule(eng, inj, events)
	d := duration.Seconds()
	eng.RunUntil(d)
	rep := ctrl.Report(d)
	rep.ThreadSeconds = rt.ProvisionedThreadSeconds(d)
	if d > 0 {
		rep.MeanThreads = rep.ThreadSeconds / d
	}
	return rt.Snapshot(d), rep
}

// SimulatePower is SimulateElastic priced by the power plane: the run's
// sleep-state residency (busy, shallow-idle and parked seconds out of the
// deployment's core budget) is converted to modelled core-only joules with
// the given calibration (zero value: DefaultPowerConfig). The same
// calibration is handed to the controller, so the internal gauge the
// joules objective steers on (ElasticReport.Joules/MeanWatts) and the
// returned external account use one model. Runs are deterministic per
// seed; the fig-power experiment is this function's sweep form.
func SimulatePower(cfg SimConfig, ecfg ElasticConfig, pc PowerConfig, arrivals []Traffic, duration time.Duration) (SimMetrics, ElasticReport, float64) {
	if pc == (PowerConfig{}) {
		pc = power.DefaultConfig()
	}
	if ecfg.Power == (PowerConfig{}) {
		ecfg.Power = pc
	}
	eng := sim.New()
	root := xrand.New(cfg.Seed)
	queues := make([]*nic.Queue, len(arrivals))
	for i, p := range arrivals {
		queues[i] = nic.NewQueue(i, p, root.Split(), ringOptions(cfg))
	}
	budget := cfg.M
	if ecfg.Budget > budget {
		budget = ecfg.Budget
	}
	cfg.Bus = telemetry.NewBus(len(arrivals), budget)
	rt := core.New(eng, queues, cfg)
	rt.Start()
	if ecfg.MinThreads == 0 {
		ecfg.MinThreads = len(arrivals)
	}
	if ecfg.Recorder == nil {
		ecfg.Recorder = cfg.Recorder
	}
	ctrl := elastic.New(cfg.Bus, rt, ecfg)
	eng.Ticker(ctrl.Config().Period, "elastic-tick", func() { ctrl.Tick(eng.Now()) })
	d := duration.Seconds()
	eng.RunUntil(d)
	rep := ctrl.Report(d)
	rep.ThreadSeconds = rt.ProvisionedThreadSeconds(d)
	if d > 0 {
		rep.MeanThreads = rep.ThreadSeconds / d
	}
	res := rt.Residency(d, d, budget)
	res.Freq = pc.FMax
	return rt.Snapshot(d), rep, pc.TeamEnergy(res)
}

// ringOptions resolves the per-queue descriptor-ring options a SimConfig
// asks for (RingCap > 0 overrides the default 576-slot ring — the elastic
// occupancy target is a fraction of this capacity, so metrosim's -cap flag
// makes the target finer- or coarser-grained).
func ringOptions(cfg SimConfig) nic.Options {
	opt := nic.DefaultOptions()
	if cfg.RingCap > 0 {
		opt.Cap = cfg.RingCap
	}
	return opt
}

// --- experiments ---------------------------------------------------------------

// Experiment regenerates one table or figure of the paper.
type Experiment = experiments.Experiment

// ResultTable is a rendered experiment artifact.
type ResultTable = experiments.Table

// Experiments lists every registered reproduction experiment.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by ID (e.g. "fig10", "tab1");
// quick mode shrinks durations for smoke runs.
func RunExperiment(id string, quick bool, seed uint64) ([]*ResultTable, bool) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, false
	}
	return e.Run(experiments.Options{Quick: quick, Seed: seed}), true
}
