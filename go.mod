module metronome

go 1.21
